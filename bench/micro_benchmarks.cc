// Hot-path micro-benchmarks (google-benchmark): wire codec, event buffer
// operations, estimators, RNG and the end-to-end simulated round. These
// guard the constants behind the figure benches — a regression here shows
// up as minutes of extra wall time in the sweeps.
#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>
#include <vector>

#include "adaptive/congestion_estimator.h"
#include "adaptive/minbuff_estimator.h"
#include "common/rng.h"
#include "core/scenario.h"
#include "gossip/event_buffer.h"
#include "gossip/message.h"
#include "membership/cluster_map.h"
#include "membership/full_membership.h"
#include "membership/locality_view.h"
#include "runtime/inmemory_fabric.h"
#include "runtime/udp_transport.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace {

using namespace agb;

gossip::GossipMessage make_message(std::size_t events,
                                   std::size_t payload_size) {
  gossip::GossipMessage m;
  m.sender = 3;
  m.round = 17;
  m.period = 2;
  m.min_buff = 60;
  for (std::size_t i = 0; i < events; ++i) {
    gossip::Event e;
    e.id = EventId{static_cast<NodeId>(i % 60), i};
    e.age = static_cast<std::uint32_t>(i % 12);
    e.created_at = static_cast<TimeMs>(i);
    e.payload = gossip::make_payload(
        std::vector<std::uint8_t>(payload_size, 0x5a));
    m.events.push_back(std::move(e));
  }
  return m;
}

void BM_MessageEncode(benchmark::State& state) {
  const auto m = make_message(static_cast<std::size_t>(state.range(0)), 16);
  std::size_t bytes = 0;
  for (auto _ : state) {
    auto encoded = m.encode();
    bytes = encoded.size();
    benchmark::DoNotOptimize(encoded);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MessageEncode)->Arg(30)->Arg(120)->Arg(500);

void BM_MessageDecode(benchmark::State& state) {
  const auto bytes =
      make_message(static_cast<std::size_t>(state.range(0)), 16).encode();
  for (auto _ : state) {
    auto decoded = gossip::GossipMessage::decode(bytes);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes.size()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MessageDecode)->Arg(30)->Arg(120)->Arg(500);

// The encode-once refactor's receipts: fanning one encoded gossip message
// out to F targets with per-target payload copies (the old Datagram) vs
// SharedBytes aliasing (the current pipeline). bytes_per_second counts the
// bytes actually copied per iteration — encode output plus, in the copy
// variant, one payload clone per target; SharedBytes copies only the encode
// output regardless of F (>= 2x fewer bytes copied from fanout 1 up).
void BM_FanoutPerTargetCopy(benchmark::State& state) {
  const auto fanout = static_cast<std::size_t>(state.range(0));
  const auto m = make_message(120, 16);
  std::size_t bytes_copied = 0;
  for (auto _ : state) {
    auto encoded = m.encode();
    bytes_copied = encoded.size();
    for (std::size_t i = 0; i < fanout; ++i) {
      std::vector<std::uint8_t> per_target = encoded;  // old pipeline
      bytes_copied += per_target.size();
      benchmark::DoNotOptimize(per_target);
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes_copied) *
                          static_cast<std::int64_t>(state.iterations()));
  state.counters["bytes_copied_per_batch"] =
      static_cast<double>(bytes_copied);
}
BENCHMARK(BM_FanoutPerTargetCopy)->Arg(3)->Arg(5)->Arg(10);

void BM_FanoutSharedBytes(benchmark::State& state) {
  const auto fanout = static_cast<std::size_t>(state.range(0));
  const auto m = make_message(120, 16);
  std::size_t bytes_copied = 0;
  for (auto _ : state) {
    const SharedBytes encoded = m.encode_shared();
    bytes_copied = encoded.size();  // the one and only byte copy
    for (std::size_t i = 0; i < fanout; ++i) {
      SharedBytes per_target = encoded;  // refcount bump
      benchmark::DoNotOptimize(per_target);
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes_copied) *
                          static_cast<std::int64_t>(state.iterations()));
  state.counters["bytes_copied_per_batch"] =
      static_cast<double>(bytes_copied);
}
BENCHMARK(BM_FanoutSharedBytes)->Arg(3)->Arg(5)->Arg(10);

// The batch-first send path's receipts, one pair per fabric: fanning one
// encoded message out to F targets one Datagram at a time (the old
// interface, still available through the send() wrapper) vs one
// send_batch(Multicast). Counters report the amortised resource per
// fan-out batch — lock acquisitions (InMemoryFabric), simulator events
// (SimNetwork), syscalls (UdpTransport) — each expected to drop ~F -> 1.

std::vector<agb::NodeId> batch_targets(std::size_t fanout) {
  std::vector<agb::NodeId> targets(fanout);
  for (std::size_t i = 0; i < fanout; ++i) {
    targets[i] = static_cast<agb::NodeId>(i + 1);
  }
  return targets;
}

void BM_InMemoryFanoutPerTargetSend(benchmark::State& state) {
  const auto fanout = static_cast<std::size_t>(state.range(0));
  runtime::InMemoryFabric fabric({.loss_probability = 0.0,
                                  .min_delay = 0,
                                  .max_delay = 0,
                                  .shards = 1});
  const auto targets = batch_targets(fanout);
  for (NodeId t : targets) fabric.attach(t, [](const Datagram&, TimeMs) {});
  const SharedBytes payload = make_message(120, 16).encode_shared();
  for (auto _ : state) {
    for (NodeId t : targets) fabric.send(Datagram{0, t, payload});
  }
  state.counters["lock_acquisitions_per_batch"] =
      static_cast<double>(fabric.send_lock_acquisitions()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_InMemoryFanoutPerTargetSend)->Arg(3)->Arg(5)->Arg(10);

void BM_InMemoryFanoutBatchSend(benchmark::State& state) {
  const auto fanout = static_cast<std::size_t>(state.range(0));
  runtime::InMemoryFabric fabric({.loss_probability = 0.0,
                                  .min_delay = 0,
                                  .max_delay = 0,
                                  .shards = 1});
  const auto targets = batch_targets(fanout);
  for (NodeId t : targets) fabric.attach(t, [](const Datagram&, TimeMs) {});
  const SharedBytes payload = make_message(120, 16).encode_shared();
  for (auto _ : state) {
    fabric.send_batch(Multicast{0, targets, payload});
  }
  state.counters["lock_acquisitions_per_batch"] =
      static_cast<double>(fabric.send_lock_acquisitions()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_InMemoryFanoutBatchSend)->Arg(3)->Arg(5)->Arg(10);

// The sharded receive path's receipts: end-to-end delivery throughput of a
// 60-node fan-out-heavy workload (every node fans one encoded gossip
// message out to every other) against {shards, max_burst}. Args
// {1, 1} reproduce the pre-sharding baseline exactly — one dispatcher,
// one handler call + lock cycle per datagram; {shards >= 4, 64} is the
// sharded burst path, the >= 3x acceptance bar (on one core the win comes
// from burst amortisation; shards add core-parallelism on top).
// max_queue_depth shows the backlog the dispatchers ran at.
void BM_InMemoryDeliveryThroughput(benchmark::State& state) {
  constexpr std::size_t kGroup = 60;
  runtime::InMemoryFabric fabric(
      {.loss_probability = 0.0,
       .min_delay = 0,
       .max_delay = 0,
       .shards = static_cast<std::size_t>(state.range(0)),
       .max_burst = static_cast<std::size_t>(state.range(1))});
  std::atomic<std::uint64_t> received{0};
  for (NodeId n = 0; n < kGroup; ++n) {
    fabric.attach_batch(n, [&received](const Datagram* batch,
                                       std::size_t count, TimeMs) {
      benchmark::DoNotOptimize(batch);
      received.fetch_add(count, std::memory_order_relaxed);
    });
  }
  std::vector<std::vector<NodeId>> targets(kGroup);
  for (NodeId from = 0; from < kGroup; ++from) {
    for (NodeId to = 0; to < kGroup; ++to) {
      if (to != from) targets[from].push_back(to);
    }
  }
  const SharedBytes payload = make_message(120, 16).encode_shared();
  constexpr std::uint64_t kPerRound = kGroup * (kGroup - 1);
  std::uint64_t want = 0;
  for (auto _ : state) {
    for (NodeId from = 0; from < kGroup; ++from) {
      fabric.send_batch(Multicast{from, targets[from], payload});
    }
    want += kPerRound;
    while (received.load(std::memory_order_relaxed) < want) {
      std::this_thread::yield();  // lossless fabric: always completes
    }
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(kPerRound));  // items/s = datagrams/s
  state.counters["max_queue_depth"] =
      static_cast<double>(fabric.max_queue_depth());
}
BENCHMARK(BM_InMemoryDeliveryThroughput)
    ->Args({1, 1})   // pre-sharding baseline: per-datagram dispatch
    ->Args({1, 64})  // burst dispatch, single dispatcher
    ->Args({4, 64})  // the acceptance configuration
    ->Args({8, 64})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_SimNetworkFanoutPerTargetSend(benchmark::State& state) {
  const auto fanout = static_cast<std::size_t>(state.range(0));
  sim::Simulator sim;
  sim::SimNetwork net(sim, sim::NetworkParams{}, Rng(1));
  const auto targets = batch_targets(fanout);
  for (NodeId t : targets) net.attach(t, [](const Datagram&, TimeMs) {});
  const SharedBytes payload = make_message(120, 16).encode_shared();
  for (auto _ : state) {
    for (NodeId t : targets) net.send(Datagram{0, t, payload});
    sim.run();  // drain deliveries: the full per-round cost
  }
  state.counters["sim_events_per_batch"] =
      static_cast<double>(net.stats().events_scheduled) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_SimNetworkFanoutPerTargetSend)->Arg(3)->Arg(5)->Arg(10);

void BM_SimNetworkFanoutBatchSend(benchmark::State& state) {
  const auto fanout = static_cast<std::size_t>(state.range(0));
  sim::Simulator sim;
  sim::SimNetwork net(sim, sim::NetworkParams{}, Rng(1));
  const auto targets = batch_targets(fanout);
  for (NodeId t : targets) net.attach(t, [](const Datagram&, TimeMs) {});
  const SharedBytes payload = make_message(120, 16).encode_shared();
  for (auto _ : state) {
    net.send_batch(Multicast{0, targets, payload});
    sim.run();
  }
  state.counters["sim_events_per_batch"] =
      static_cast<double>(net.stats().events_scheduled) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_SimNetworkFanoutBatchSend)->Arg(3)->Arg(5)->Arg(10);

void BM_UdpFanoutPerTargetSend(benchmark::State& state) {
  const auto fanout = static_cast<std::size_t>(state.range(0));
  runtime::UdpTransport transport(29'100);
  transport.attach(0, [](const Datagram&, TimeMs) {});
  const auto targets = batch_targets(fanout);
  for (NodeId t : targets) {
    transport.attach(t, [](const Datagram&, TimeMs) {});
  }
  const SharedBytes payload = make_message(120, 16).encode_shared();
  for (auto _ : state) {
    for (NodeId t : targets) transport.send(Datagram{0, t, payload});
  }
  state.counters["syscalls_per_batch"] =
      static_cast<double>(transport.send_syscalls()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_UdpFanoutPerTargetSend)->Arg(3)->Arg(5)->Arg(10);

void BM_UdpFanoutBatchSend(benchmark::State& state) {
  const auto fanout = static_cast<std::size_t>(state.range(0));
  runtime::UdpTransport transport(29'200);
  transport.attach(0, [](const Datagram&, TimeMs) {});
  const auto targets = batch_targets(fanout);
  for (NodeId t : targets) {
    transport.attach(t, [](const Datagram&, TimeMs) {});
  }
  const SharedBytes payload = make_message(120, 16).encode_shared();
  for (auto _ : state) {
    transport.send_batch(Multicast{0, targets, payload});
  }
  state.counters["syscalls_per_batch"] =
      static_cast<double>(transport.send_syscalls()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_UdpFanoutBatchSend)->Arg(3)->Arg(5)->Arg(10);

// Inbound mirror of the fan-out benches: one sendmmsg burst of F datagrams
// to a single receiver, drained through recvmmsg (recv_batch 16). The
// handler decodes every datagram, as NodeRuntime's does — that realistic
// per-datagram cost is what lets inbound bursts pile up behind it, which
// is exactly when batch draining pays. The recv_syscalls_per_burst
// counter is the receipt — F per-recv() syscalls before, approaching
// ceil(F/16) (plus wakeup calls) after. Arg is F.
void BM_UdpRecvBurstSyscalls(benchmark::State& state) {
  const auto fanout = static_cast<std::size_t>(state.range(0));
  runtime::UdpTransport transport(29'300, /*recv_batch=*/16);
  transport.attach(0, [](const Datagram&, TimeMs) {});
  std::atomic<std::uint64_t> received{0};
  transport.attach_batch(
      1, [&received](const Datagram* batch, std::size_t count, TimeMs) {
        for (std::size_t i = 0; i < count; ++i) {
          auto decoded = gossip::decode_any(batch[i].payload);
          benchmark::DoNotOptimize(decoded);
        }
        received.fetch_add(count, std::memory_order_relaxed);
      });
  const std::vector<NodeId> targets(fanout, 1);
  // Small payload: the whole burst must fit the socket rcvbuf, UDP drops
  // the overflow otherwise.
  const SharedBytes payload = make_message(4, 16).encode_shared();
  std::uint64_t want = 0;
  for (auto _ : state) {
    transport.send_batch(Multicast{0, targets, payload});
    want += fanout;
    // UDP is lossy even on loopback (rcvbuf overflow under scheduler
    // stalls): top up any kernel-dropped datagrams instead of spinning
    // forever. Rare, so the syscall counter stays representative.
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(200);
    while (received.load(std::memory_order_relaxed) < want) {
      if (std::chrono::steady_clock::now() > deadline) {
        const std::uint64_t missing =
            want - received.load(std::memory_order_relaxed);
        transport.send_batch(Multicast{
            0, std::vector<NodeId>(static_cast<std::size_t>(missing), 1),
            payload});
        deadline = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(200);
      }
      std::this_thread::yield();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fanout));
  state.counters["recv_syscalls_per_burst"] =
      static_cast<double>(transport.recv_syscalls()) /
      static_cast<double>(state.iterations());
  state.counters["datagrams_per_burst"] = static_cast<double>(fanout);
}
BENCHMARK(BM_UdpRecvBurstSyscalls)->Arg(16)->Arg(64)->UseRealTime();

void BM_EventBufferInsertShrink(benchmark::State& state) {
  const auto capacity = static_cast<std::size_t>(state.range(0));
  std::uint64_t seq = 0;
  gossip::EventBuffer buf;
  for (auto _ : state) {
    gossip::Event e;
    e.id = EventId{1, seq++};
    e.age = static_cast<std::uint32_t>(seq % 12);
    buf.insert(std::move(e));
    auto dropped = buf.shrink_to(capacity);
    benchmark::DoNotOptimize(dropped);
  }
}
BENCHMARK(BM_EventBufferInsertShrink)->Arg(60)->Arg(180);

void BM_EventBufferSnapshot(benchmark::State& state) {
  gossip::EventBuffer buf;
  for (std::uint64_t i = 0; i < static_cast<std::uint64_t>(state.range(0));
       ++i) {
    gossip::Event e;
    e.id = EventId{1, i};
    buf.insert(std::move(e));
  }
  for (auto _ : state) {
    auto snapshot = buf.snapshot();
    benchmark::DoNotOptimize(snapshot);
  }
}
BENCHMARK(BM_EventBufferSnapshot)->Arg(60)->Arg(180);

void BM_CongestionEstimatorObserve(benchmark::State& state) {
  gossip::EventBuffer buf;
  for (std::uint64_t i = 0; i < 200; ++i) {
    gossip::Event e;
    e.id = EventId{1, i};
    e.age = static_cast<std::uint32_t>(i % 12);
    buf.insert(std::move(e));
  }
  adaptive::CongestionEstimator est(0.9, 5.0);
  for (auto _ : state) {
    est.observe(buf, static_cast<std::size_t>(state.range(0)));
    est.prune(buf);
    benchmark::DoNotOptimize(est.avg_age());
  }
}
BENCHMARK(BM_CongestionEstimatorObserve)->Arg(60)->Arg(180);

void BM_MinBuffEstimatorHeader(benchmark::State& state) {
  adaptive::MinBuffEstimator est(2, 120);
  Rng rng(1);
  PeriodId period = 0;
  for (auto _ : state) {
    est.on_header(period, static_cast<std::uint32_t>(30 + rng.next_below(90)));
    if (rng.bernoulli(0.01)) est.advance_to(++period);
    benchmark::DoNotOptimize(est.estimate());
  }
}
BENCHMARK(BM_MinBuffEstimatorHeader);

void BM_RngSampleIndices(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) {
    auto sample = rng.sample_indices(60, 4);
    benchmark::DoNotOptimize(sample);
  }
}
BENCHMARK(BM_RngSampleIndices);

// Target selection on the per-round hot path: uniform sampling from a full
// directory vs the locality-biased decorator (snapshot + cluster
// partition + bridge election every call, the price of staying correct
// under churn). Arg is the group size.

std::unique_ptr<membership::FullMembership> bench_directory(
    std::size_t group) {
  auto members = std::make_unique<membership::FullMembership>(0, Rng(3));
  for (NodeId id = 1; id < group; ++id) members->add(id);
  return members;
}

void BM_UniformTargets(benchmark::State& state) {
  auto members = bench_directory(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto targets = members->targets(4);
    benchmark::DoNotOptimize(targets);
  }
}
BENCHMARK(BM_UniformTargets)->Arg(60)->Arg(300);

void BM_LocalityTargets(benchmark::State& state) {
  membership::LocalityParams params;
  params.enabled = true;
  params.p_local = 0.9;
  membership::LocalityView view(
      0, params, std::make_shared<membership::ModuloClusterMap>(3),
      bench_directory(static_cast<std::size_t>(state.range(0))), Rng(4));
  for (auto _ : state) {
    auto targets = view.targets(4);
    benchmark::DoNotOptimize(targets);
  }
}
BENCHMARK(BM_LocalityTargets)->Arg(60)->Arg(300);

void BM_SimulatedSecond(benchmark::State& state) {
  // Cost of one virtual second of the full 60-node simulation, codec and
  // network model included (the unit the figure benches are made of).
  for (auto _ : state) {
    state.PauseTiming();
    core::ScenarioParams p;
    p.n = 60;
    p.senders = 4;
    p.offered_rate = 30.0;
    p.adaptive = state.range(0) == 1;
    p.gossip.gossip_period = 2000;
    p.gossip.max_events = 120;
    p.warmup = 0;
    p.duration = 1000;
    p.cooldown = 0;
    core::Scenario s(p);
    state.ResumeTiming();
    auto r = s.run();
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SimulatedSecond)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
