// Hot-path micro-benchmarks (google-benchmark): wire codec, event buffer
// operations, estimators, RNG and the end-to-end simulated round. These
// guard the constants behind the figure benches — a regression here shows
// up as minutes of extra wall time in the sweeps.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <functional>
#include <memory>
#include <new>
#include <optional>
#include <queue>
#include <thread>
#include <vector>

#include "adaptive/congestion_estimator.h"
#include "adaptive/minbuff_estimator.h"
#include "common/rng.h"
#include "core/scenario.h"
#include "core/sharded_scenario.h"
#include "gossip/event_buffer.h"
#include "gossip/message.h"
#include "membership/cluster_map.h"
#include "membership/full_membership.h"
#include "membership/locality_view.h"
#include "runtime/inmemory_fabric.h"
#include "runtime/udp_transport.h"
#include "sim/event_callback.h"
#include "sim/event_queue.h"
#include "sim/network.h"
#include "sim/simulator.h"

// Process-wide heap-allocation counter backing the zero-alloc receipts in
// the event-queue benchmarks below: benchmarks snapshot the counter around
// their timed loop, so a steady-state path that touches the allocator at
// all shows up as allocs_per_event > 0. noinline keeps GCC from inlining
// the malloc/free bodies into call sites, where it would flag the
// new-via-malloc / delete-via-free pairing as mismatched.
std::atomic<std::uint64_t> g_heap_allocs{0};

__attribute__((noinline)) void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}

__attribute__((noinline)) void* operator new(std::size_t size,
                                             std::align_val_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), size ? size : 1) ==
      0) {
    return p;
  }
  throw std::bad_alloc{};
}

__attribute__((noinline)) void operator delete(void* p) noexcept {
  std::free(p);
}
__attribute__((noinline)) void operator delete(void* p,
                                               std::size_t) noexcept {
  std::free(p);
}
__attribute__((noinline)) void operator delete(void* p,
                                               std::align_val_t) noexcept {
  std::free(p);
}
__attribute__((noinline)) void operator delete(void* p, std::size_t,
                                               std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace agb;

gossip::GossipMessage make_message(std::size_t events,
                                   std::size_t payload_size) {
  gossip::GossipMessage m;
  m.sender = 3;
  m.round = 17;
  m.period = 2;
  m.min_buff = 60;
  for (std::size_t i = 0; i < events; ++i) {
    gossip::Event e;
    e.id = EventId{static_cast<NodeId>(i % 60), i};
    e.age = static_cast<std::uint32_t>(i % 12);
    e.created_at = static_cast<TimeMs>(i);
    e.payload = gossip::make_payload(
        std::vector<std::uint8_t>(payload_size, 0x5a));
    m.events.push_back(std::move(e));
  }
  return m;
}

void BM_MessageEncode(benchmark::State& state) {
  const auto m = make_message(static_cast<std::size_t>(state.range(0)), 16);
  std::size_t bytes = 0;
  for (auto _ : state) {
    auto encoded = m.encode();
    bytes = encoded.size();
    benchmark::DoNotOptimize(encoded);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MessageEncode)->Arg(30)->Arg(120)->Arg(500);

void BM_MessageDecode(benchmark::State& state) {
  const auto bytes =
      make_message(static_cast<std::size_t>(state.range(0)), 16).encode();
  for (auto _ : state) {
    auto decoded = gossip::GossipMessage::decode(bytes);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes.size()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MessageDecode)->Arg(30)->Arg(120)->Arg(500);

// The encode-once refactor's receipts: fanning one encoded gossip message
// out to F targets with per-target payload copies (the old Datagram) vs
// SharedBytes aliasing (the current pipeline). bytes_per_second counts the
// bytes actually copied per iteration — encode output plus, in the copy
// variant, one payload clone per target; SharedBytes copies only the encode
// output regardless of F (>= 2x fewer bytes copied from fanout 1 up).
void BM_FanoutPerTargetCopy(benchmark::State& state) {
  const auto fanout = static_cast<std::size_t>(state.range(0));
  const auto m = make_message(120, 16);
  std::size_t bytes_copied = 0;
  for (auto _ : state) {
    auto encoded = m.encode();
    bytes_copied = encoded.size();
    for (std::size_t i = 0; i < fanout; ++i) {
      std::vector<std::uint8_t> per_target = encoded;  // old pipeline
      bytes_copied += per_target.size();
      benchmark::DoNotOptimize(per_target);
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes_copied) *
                          static_cast<std::int64_t>(state.iterations()));
  state.counters["bytes_copied_per_batch"] =
      static_cast<double>(bytes_copied);
}
BENCHMARK(BM_FanoutPerTargetCopy)->Arg(3)->Arg(5)->Arg(10);

void BM_FanoutSharedBytes(benchmark::State& state) {
  const auto fanout = static_cast<std::size_t>(state.range(0));
  const auto m = make_message(120, 16);
  std::size_t bytes_copied = 0;
  for (auto _ : state) {
    const SharedBytes encoded = m.encode_shared();
    bytes_copied = encoded.size();  // the one and only byte copy
    for (std::size_t i = 0; i < fanout; ++i) {
      SharedBytes per_target = encoded;  // refcount bump
      benchmark::DoNotOptimize(per_target);
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes_copied) *
                          static_cast<std::int64_t>(state.iterations()));
  state.counters["bytes_copied_per_batch"] =
      static_cast<double>(bytes_copied);
}
BENCHMARK(BM_FanoutSharedBytes)->Arg(3)->Arg(5)->Arg(10);

// The batch-first send path's receipts, one pair per fabric: fanning one
// encoded message out to F targets one Datagram at a time (the old
// interface, still available through the send() wrapper) vs one
// send_batch(Multicast). Counters report the amortised resource per
// fan-out batch — lock acquisitions (InMemoryFabric), simulator events
// (SimNetwork), syscalls (UdpTransport) — each expected to drop ~F -> 1.

std::vector<agb::NodeId> batch_targets(std::size_t fanout) {
  std::vector<agb::NodeId> targets(fanout);
  for (std::size_t i = 0; i < fanout; ++i) {
    targets[i] = static_cast<agb::NodeId>(i + 1);
  }
  return targets;
}

void BM_InMemoryFanoutPerTargetSend(benchmark::State& state) {
  const auto fanout = static_cast<std::size_t>(state.range(0));
  runtime::InMemoryFabric fabric({.loss_probability = 0.0,
                                  .min_delay = 0,
                                  .max_delay = 0,
                                  .shards = 1});
  const auto targets = batch_targets(fanout);
  for (NodeId t : targets) fabric.attach(t, [](const Datagram&, TimeMs) {});
  const SharedBytes payload = make_message(120, 16).encode_shared();
  for (auto _ : state) {
    for (NodeId t : targets) fabric.send(Datagram{0, t, payload});
  }
  state.counters["lock_acquisitions_per_batch"] =
      static_cast<double>(fabric.send_lock_acquisitions()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_InMemoryFanoutPerTargetSend)->Arg(3)->Arg(5)->Arg(10);

void BM_InMemoryFanoutBatchSend(benchmark::State& state) {
  const auto fanout = static_cast<std::size_t>(state.range(0));
  runtime::InMemoryFabric fabric({.loss_probability = 0.0,
                                  .min_delay = 0,
                                  .max_delay = 0,
                                  .shards = 1});
  const auto targets = batch_targets(fanout);
  for (NodeId t : targets) fabric.attach(t, [](const Datagram&, TimeMs) {});
  const SharedBytes payload = make_message(120, 16).encode_shared();
  for (auto _ : state) {
    fabric.send_batch(Multicast{0, targets, payload});
  }
  state.counters["lock_acquisitions_per_batch"] =
      static_cast<double>(fabric.send_lock_acquisitions()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_InMemoryFanoutBatchSend)->Arg(3)->Arg(5)->Arg(10);

// The sharded receive path's receipts: end-to-end delivery throughput of a
// 60-node fan-out-heavy workload (every node fans one encoded gossip
// message out to every other) against {shards, max_burst}. Args
// {1, 1} reproduce the pre-sharding baseline exactly — one dispatcher,
// one handler call + lock cycle per datagram; {shards >= 4, 64} is the
// sharded burst path, the >= 3x acceptance bar (on one core the win comes
// from burst amortisation; shards add core-parallelism on top).
// max_queue_depth shows the backlog the dispatchers ran at.
void BM_InMemoryDeliveryThroughput(benchmark::State& state) {
  constexpr std::size_t kGroup = 60;
  runtime::InMemoryFabric fabric(
      {.loss_probability = 0.0,
       .min_delay = 0,
       .max_delay = 0,
       .shards = static_cast<std::size_t>(state.range(0)),
       .max_burst = static_cast<std::size_t>(state.range(1))});
  std::atomic<std::uint64_t> received{0};
  for (NodeId n = 0; n < kGroup; ++n) {
    fabric.attach_batch(n, [&received](const Datagram* batch,
                                       std::size_t count, TimeMs) {
      benchmark::DoNotOptimize(batch);
      received.fetch_add(count, std::memory_order_relaxed);
    });
  }
  std::vector<std::vector<NodeId>> targets(kGroup);
  for (NodeId from = 0; from < kGroup; ++from) {
    for (NodeId to = 0; to < kGroup; ++to) {
      if (to != from) targets[from].push_back(to);
    }
  }
  const SharedBytes payload = make_message(120, 16).encode_shared();
  constexpr std::uint64_t kPerRound = kGroup * (kGroup - 1);
  std::uint64_t want = 0;
  for (auto _ : state) {
    for (NodeId from = 0; from < kGroup; ++from) {
      fabric.send_batch(Multicast{from, targets[from], payload});
    }
    want += kPerRound;
    while (received.load(std::memory_order_relaxed) < want) {
      std::this_thread::yield();  // lossless fabric: always completes
    }
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(kPerRound));  // items/s = datagrams/s
  state.counters["max_queue_depth"] =
      static_cast<double>(fabric.max_queue_depth());
}
BENCHMARK(BM_InMemoryDeliveryThroughput)
    ->Args({1, 1})   // pre-sharding baseline: per-datagram dispatch
    ->Args({1, 64})  // burst dispatch, single dispatcher
    ->Args({4, 64})  // the acceptance configuration
    ->Args({8, 64})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_SimNetworkFanoutPerTargetSend(benchmark::State& state) {
  const auto fanout = static_cast<std::size_t>(state.range(0));
  sim::Simulator sim;
  sim::SimNetwork net(sim, sim::NetworkParams{}, Rng(1));
  const auto targets = batch_targets(fanout);
  for (NodeId t : targets) net.attach(t, [](const Datagram&, TimeMs) {});
  const SharedBytes payload = make_message(120, 16).encode_shared();
  for (auto _ : state) {
    for (NodeId t : targets) net.send(Datagram{0, t, payload});
    sim.run();  // drain deliveries: the full per-round cost
  }
  state.counters["sim_events_per_batch"] =
      static_cast<double>(net.stats().events_scheduled) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_SimNetworkFanoutPerTargetSend)->Arg(3)->Arg(5)->Arg(10);

void BM_SimNetworkFanoutBatchSend(benchmark::State& state) {
  const auto fanout = static_cast<std::size_t>(state.range(0));
  sim::Simulator sim;
  sim::SimNetwork net(sim, sim::NetworkParams{}, Rng(1));
  const auto targets = batch_targets(fanout);
  for (NodeId t : targets) net.attach(t, [](const Datagram&, TimeMs) {});
  const SharedBytes payload = make_message(120, 16).encode_shared();
  for (auto _ : state) {
    net.send_batch(Multicast{0, targets, payload});
    sim.run();
  }
  state.counters["sim_events_per_batch"] =
      static_cast<double>(net.stats().events_scheduled) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_SimNetworkFanoutBatchSend)->Arg(3)->Arg(5)->Arg(10);

void BM_UdpFanoutPerTargetSend(benchmark::State& state) {
  const auto fanout = static_cast<std::size_t>(state.range(0));
  runtime::UdpTransport transport(29'100);
  transport.attach(0, [](const Datagram&, TimeMs) {});
  const auto targets = batch_targets(fanout);
  for (NodeId t : targets) {
    transport.attach(t, [](const Datagram&, TimeMs) {});
  }
  const SharedBytes payload = make_message(120, 16).encode_shared();
  for (auto _ : state) {
    for (NodeId t : targets) transport.send(Datagram{0, t, payload});
  }
  state.counters["syscalls_per_batch"] =
      static_cast<double>(transport.send_syscalls()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_UdpFanoutPerTargetSend)->Arg(3)->Arg(5)->Arg(10);

void BM_UdpFanoutBatchSend(benchmark::State& state) {
  const auto fanout = static_cast<std::size_t>(state.range(0));
  runtime::UdpTransport transport(29'200);
  transport.attach(0, [](const Datagram&, TimeMs) {});
  const auto targets = batch_targets(fanout);
  for (NodeId t : targets) {
    transport.attach(t, [](const Datagram&, TimeMs) {});
  }
  const SharedBytes payload = make_message(120, 16).encode_shared();
  for (auto _ : state) {
    transport.send_batch(Multicast{0, targets, payload});
  }
  state.counters["syscalls_per_batch"] =
      static_cast<double>(transport.send_syscalls()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_UdpFanoutBatchSend)->Arg(3)->Arg(5)->Arg(10);

// Inbound mirror of the fan-out benches: one sendmmsg burst of F datagrams
// to a single receiver, drained through recvmmsg (recv_batch 16). The
// handler decodes every datagram, as NodeRuntime's does — that realistic
// per-datagram cost is what lets inbound bursts pile up behind it, which
// is exactly when batch draining pays. The recv_syscalls_per_burst
// counter is the receipt — F per-recv() syscalls before, approaching
// ceil(F/16) (plus wakeup calls) after. Arg is F.
void BM_UdpRecvBurstSyscalls(benchmark::State& state) {
  const auto fanout = static_cast<std::size_t>(state.range(0));
  runtime::UdpTransport transport(29'300, /*recv_batch=*/16);
  transport.attach(0, [](const Datagram&, TimeMs) {});
  std::atomic<std::uint64_t> received{0};
  transport.attach_batch(
      1, [&received](const Datagram* batch, std::size_t count, TimeMs) {
        for (std::size_t i = 0; i < count; ++i) {
          auto decoded = gossip::decode_any(batch[i].payload);
          benchmark::DoNotOptimize(decoded);
        }
        received.fetch_add(count, std::memory_order_relaxed);
      });
  const std::vector<NodeId> targets(fanout, 1);
  // Small payload: the whole burst must fit the socket rcvbuf, UDP drops
  // the overflow otherwise.
  const SharedBytes payload = make_message(4, 16).encode_shared();
  std::uint64_t want = 0;
  for (auto _ : state) {
    transport.send_batch(Multicast{0, targets, payload});
    want += fanout;
    // UDP is lossy even on loopback (rcvbuf overflow under scheduler
    // stalls): top up any kernel-dropped datagrams instead of spinning
    // forever. Rare, so the syscall counter stays representative.
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(200);
    while (received.load(std::memory_order_relaxed) < want) {
      if (std::chrono::steady_clock::now() > deadline) {
        const std::uint64_t missing =
            want - received.load(std::memory_order_relaxed);
        transport.send_batch(Multicast{
            0, std::vector<NodeId>(static_cast<std::size_t>(missing), 1),
            payload});
        deadline = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(200);
      }
      std::this_thread::yield();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fanout));
  state.counters["recv_syscalls_per_burst"] =
      static_cast<double>(transport.recv_syscalls()) /
      static_cast<double>(state.iterations());
  state.counters["datagrams_per_burst"] = static_cast<double>(fanout);
}
BENCHMARK(BM_UdpRecvBurstSyscalls)->Arg(16)->Arg(64)->UseRealTime();

void BM_EventBufferInsertShrink(benchmark::State& state) {
  const auto capacity = static_cast<std::size_t>(state.range(0));
  std::uint64_t seq = 0;
  gossip::EventBuffer buf;
  for (auto _ : state) {
    gossip::Event e;
    e.id = EventId{1, seq++};
    e.age = static_cast<std::uint32_t>(seq % 12);
    buf.insert(std::move(e));
    auto dropped = buf.shrink_to(capacity);
    benchmark::DoNotOptimize(dropped);
  }
}
BENCHMARK(BM_EventBufferInsertShrink)->Arg(60)->Arg(180);

void BM_EventBufferSnapshot(benchmark::State& state) {
  gossip::EventBuffer buf;
  for (std::uint64_t i = 0; i < static_cast<std::uint64_t>(state.range(0));
       ++i) {
    gossip::Event e;
    e.id = EventId{1, i};
    buf.insert(std::move(e));
  }
  for (auto _ : state) {
    auto snapshot = buf.snapshot();
    benchmark::DoNotOptimize(snapshot);
  }
}
BENCHMARK(BM_EventBufferSnapshot)->Arg(60)->Arg(180);

void BM_CongestionEstimatorObserve(benchmark::State& state) {
  gossip::EventBuffer buf;
  for (std::uint64_t i = 0; i < 200; ++i) {
    gossip::Event e;
    e.id = EventId{1, i};
    e.age = static_cast<std::uint32_t>(i % 12);
    buf.insert(std::move(e));
  }
  adaptive::CongestionEstimator est(0.9, 5.0);
  for (auto _ : state) {
    est.observe(buf, static_cast<std::size_t>(state.range(0)));
    est.prune(buf);
    benchmark::DoNotOptimize(est.avg_age());
  }
}
BENCHMARK(BM_CongestionEstimatorObserve)->Arg(60)->Arg(180);

void BM_MinBuffEstimatorHeader(benchmark::State& state) {
  adaptive::MinBuffEstimator est(2, 120);
  Rng rng(1);
  PeriodId period = 0;
  for (auto _ : state) {
    est.on_header(period, static_cast<std::uint32_t>(30 + rng.next_below(90)));
    if (rng.bernoulli(0.01)) est.advance_to(++period);
    benchmark::DoNotOptimize(est.estimate());
  }
}
BENCHMARK(BM_MinBuffEstimatorHeader);

void BM_RngSampleIndices(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) {
    auto sample = rng.sample_indices(60, 4);
    benchmark::DoNotOptimize(sample);
  }
}
BENCHMARK(BM_RngSampleIndices);

// Target selection on the per-round hot path: uniform sampling from a full
// directory vs the locality-biased decorator (snapshot + cluster
// partition + bridge election every call, the price of staying correct
// under churn). Arg is the group size.

std::unique_ptr<membership::FullMembership> bench_directory(
    std::size_t group) {
  auto members = std::make_unique<membership::FullMembership>(0, Rng(3));
  for (NodeId id = 1; id < group; ++id) members->add(id);
  return members;
}

void BM_UniformTargets(benchmark::State& state) {
  auto members = bench_directory(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto targets = members->targets(4);
    benchmark::DoNotOptimize(targets);
  }
}
BENCHMARK(BM_UniformTargets)->Arg(60)->Arg(300);

void BM_LocalityTargets(benchmark::State& state) {
  membership::LocalityParams params;
  params.enabled = true;
  params.p_local = 0.9;
  membership::LocalityView view(
      0, params, std::make_shared<membership::ModuloClusterMap>(3),
      bench_directory(static_cast<std::size_t>(state.range(0))), Rng(4));
  for (auto _ : state) {
    auto targets = view.targets(4);
    benchmark::DoNotOptimize(targets);
  }
}
BENCHMARK(BM_LocalityTargets)->Arg(60)->Arg(300);

// The calendar-queue receipts. `seed_baseline` is a verbatim copy of the
// event queue this repo shipped before the calendar rewrite — binary heap
// of std::function entries, one shared_ptr<bool> tombstone per event — so
// the pair below measures old vs new on the same workload in the same
// binary. Keep it in sync with nothing: it is frozen history.
namespace seed_baseline {

class EventHandle {
 public:
  EventHandle() = default;
  void cancel() noexcept {
    if (auto alive = alive_.lock()) *alive = false;
  }

 private:
  friend class EventQueue;
  explicit EventHandle(std::weak_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::weak_ptr<bool> alive_;
};

class EventQueue {
 public:
  EventHandle schedule(TimeMs at, std::function<void()> fn) {
    auto alive = std::make_shared<bool>(true);
    EventHandle handle{alive};
    heap_.push(Entry{at, next_seq_++, std::move(fn), std::move(alive)});
    return handle;
  }

  struct Fired {
    TimeMs at;
    std::function<void()> fn;
  };

  std::optional<Fired> pop() {
    while (!heap_.empty() && !*heap_.top().alive) heap_.pop();
    if (heap_.empty()) return std::nullopt;
    Entry entry = heap_.top();
    heap_.pop();
    *entry.alive = false;
    return Fired{entry.at, std::move(entry.fn)};
  }

 private:
  struct Entry {
    TimeMs at;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> alive;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace seed_baseline

// Schedule n events scattered over an 8192 ms span (half land past the
// 4096-bucket ring, exercising the overflow heap and its migration),
// cancel every 4th, drain the rest. Arg is n. The allocs_per_event counter
// is the zero-allocation receipt: after the untimed warm-up pass the
// calendar queue's slot pool and ring are at capacity, so the steady-state
// schedule/cancel/pop cycle must not touch the allocator at all — the seed
// baseline pays at least the shared_ptr control block per event.
constexpr agb::TimeMs kQueueBenchSpan = 8192;

void BM_EventQueueScheduleCancelDrain(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::EventQueue queue;
  std::vector<sim::EventHandle> handles(n);
  Rng rng(42);
  std::uint64_t sink = 0;
  TimeMs base = 0;
  const auto pass = [&] {
    for (std::size_t i = 0; i < n; ++i) {
      handles[i] = queue.schedule(
          base + static_cast<TimeMs>(rng.next_below(kQueueBenchSpan)),
          [&sink, i] { sink += i; });
    }
    for (std::size_t i = 0; i < n; i += 4) handles[i].cancel();
    while (auto fired = queue.pop()) fired->fn();
    base += kQueueBenchSpan;
  };
  // Untimed warm-up: grows the slot pool and the overflow heap's backing
  // vector to their steady-state high-water marks.
  for (int i = 0; i < 4; ++i) pass();
  const std::uint64_t allocs_before =
      g_heap_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) pass();
  const auto events =
      static_cast<double>(state.iterations()) * static_cast<double>(n);
  state.counters["allocs_per_event"] =
      static_cast<double>(g_heap_allocs.load(std::memory_order_relaxed) -
                          allocs_before) /
      events;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventQueueScheduleCancelDrain)
    ->Arg(1'000)
    ->Arg(10'000)
    ->Arg(100'000);

void BM_SeedEventQueueScheduleCancelDrain(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  seed_baseline::EventQueue queue;
  std::vector<seed_baseline::EventHandle> handles(n);
  Rng rng(42);
  std::uint64_t sink = 0;
  TimeMs base = 0;
  const auto pass = [&] {
    for (std::size_t i = 0; i < n; ++i) {
      handles[i] = queue.schedule(
          base + static_cast<TimeMs>(rng.next_below(kQueueBenchSpan)),
          [&sink, i] { sink += i; });
    }
    for (std::size_t i = 0; i < n; i += 4) handles[i].cancel();
    while (auto fired = queue.pop()) fired->fn();
    base += kQueueBenchSpan;
  };
  pass();
  const std::uint64_t allocs_before =
      g_heap_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) pass();
  const auto events =
      static_cast<double>(state.iterations()) * static_cast<double>(n);
  state.counters["allocs_per_event"] =
      static_cast<double>(g_heap_allocs.load(std::memory_order_relaxed) -
                          allocs_before) /
      events;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_SeedEventQueueScheduleCancelDrain)
    ->Arg(1'000)
    ->Arg(10'000)
    ->Arg(100'000);

// Whole-scenario round cost at scale: two full gossip rounds (round wheel
// sweep, target selection, codec, network delivery) over n nodes.
// items/s is nodes simulated per virtual second of wall time — the number
// the BENCH_sim_scale record tracks. Second arg selects membership:
// 0 = full directory (the seed configuration — FullMembership::targets
// draws from an O(n) directory, so per-round work is O(n^2) and the
// n=10^5 point is omitted as intractable), 1 = bounded lpbcast partial
// views (what the scale presets run). The >= 10x acceptance compares
// {10000, 1} against {10000, 0}.
void BM_ScenarioRoundTick(benchmark::State& state) {
  constexpr TimeMs kPeriod = 1'000;
  constexpr std::size_t kRounds = 2;
  for (auto _ : state) {
    state.PauseTiming();
    core::ScenarioParams p;
    p.n = static_cast<std::size_t>(state.range(0));
    p.senders = 8;
    p.offered_rate = 10.0;
    p.partial_view = state.range(1) == 1;
    p.gossip.gossip_period = kPeriod;
    p.warmup = 0;
    p.duration = kPeriod * kRounds;
    p.cooldown = 0;
    core::Scenario s(p);
    state.ResumeTiming();
    auto r = s.run();
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) *
                          static_cast<std::int64_t>(kRounds) * kPeriod /
                          1'000);
}
BENCHMARK(BM_ScenarioRoundTick)
    ->Args({1'000, 0})
    ->Args({10'000, 0})
    ->Args({1'000, 1})
    ->Args({10'000, 1})
    ->Args({100'000, 1})
    ->Unit(benchmark::kMillisecond);

// The same partial-view workload on the sharded engine: arg0 is n, arg1 the
// shard count (workers = shards). The {n, 1} point prices the sharded
// harness's fixed overhead against BM_ScenarioRoundTick {n, 1} above
// (window barriers + canonical sorts on one core); the 2/4/8 points are the
// scaling curve — flat on a single-core runner, and the multi-core speedup
// the BENCH_sim_scale acceptance gate tracks elsewhere.
void BM_ShardedRoundTick(benchmark::State& state) {
  constexpr TimeMs kPeriod = 1'000;
  constexpr std::size_t kRounds = 2;
  for (auto _ : state) {
    state.PauseTiming();
    core::ScenarioParams p;
    p.n = static_cast<std::size_t>(state.range(0));
    p.senders = 8;
    p.offered_rate = 10.0;
    p.partial_view = true;
    p.gossip.gossip_period = kPeriod;
    p.warmup = 0;
    p.duration = kPeriod * kRounds;
    p.cooldown = 0;
    p.sim_shards = static_cast<std::size_t>(state.range(1));
    p.sim_workers = static_cast<std::size_t>(state.range(1));
    core::ShardedScenario s(std::move(p));
    state.ResumeTiming();
    auto r = s.run();
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) *
                          static_cast<std::int64_t>(kRounds) * kPeriod /
                          1'000);
}
BENCHMARK(BM_ShardedRoundTick)
    ->Args({10'000, 1})
    ->Args({10'000, 2})
    ->Args({10'000, 4})
    ->Args({10'000, 8})
    ->Args({100'000, 4})
    ->Unit(benchmark::kMillisecond);

void BM_SimulatedSecond(benchmark::State& state) {
  // Cost of one virtual second of the full 60-node simulation, codec and
  // network model included (the unit the figure benches are made of).
  for (auto _ : state) {
    state.PauseTiming();
    core::ScenarioParams p;
    p.n = 60;
    p.senders = 4;
    p.offered_rate = 30.0;
    p.adaptive = state.range(0) == 1;
    p.gossip.gossip_period = 2000;
    p.gossip.max_events = 120;
    p.warmup = 0;
    p.duration = 1000;
    p.cooldown = 0;
    core::Scenario s(p);
    state.ResumeTiming();
    auto r = s.run();
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SimulatedSecond)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
