// Shared CLI plumbing for the figure-reproduction benches.
//
// Every bench binary reproduces one figure of the paper on a named preset
// from core::ScenarioRegistry (the calibrated "paper60" configuration and
// its figure-specific variants; see src/core/scenario_registry.h for the
// catalogue). Benches accept key=value overrides, e.g.:
//
//   fig8_reliability seed=7 duration_s=60 quick=1
//
// `quick=1` shortens runs for smoke-testing; reported numbers then carry
// more noise.
#pragma once

#include <string>

#include "common/config.h"
#include "core/scenario.h"
#include "core/scenario_registry.h"

namespace agb::bench {

/// The calibrated critical age a_r of the paper60 configuration (hops),
/// under the bimodal-atomicity criterion the adaptive marks target.
/// Regenerate with bench/fig4_max_rate, which prints the knee ages under
/// both criteria (avg-receivers: 5.60 +- 0.10; atomicity: 7.98 +- 0.28).
inline constexpr double kCriticalAge = core::kPaper60CriticalAge;

/// Builds the named registry preset with overrides from `cfg`. The thin
/// wrapper exists so every bench resolves parameters the same way:
///   auto base = bench::preset_params("fig8", cfg);
core::ScenarioParams preset_params(const std::string& name,
                                   const Config& cfg);

/// Backwards-compatible alias for the paper60 preset.
core::ScenarioParams paper_params(const Config& cfg);

/// Parses argv into a Config; exits with a usage message on bad input.
Config parse_cli(int argc, char** argv);

/// Prints the standard bench banner.
void print_banner(const std::string& figure, const std::string& description,
                  const core::ScenarioParams& params);

/// Warns about unknown keys (typos) after a bench consumed its options.
void warn_unused(const Config& cfg);

}  // namespace agb::bench
