// Shared experiment configuration for the figure-reproduction benches.
//
// Every bench binary reproduces one figure of the paper on the calibrated
// "paper60" configuration: 60 nodes, fanout 4, and a 2 s gossip period —
// the period at which this substrate's capacity knee lands at the paper's
// buffer-size axis (≈120 events at 30 msg/s; see EXPERIMENTS.md for the
// calibration). Benches accept key=value overrides, e.g.:
//
//   fig8_reliability seed=7 duration_s=60 quick=1
//
// `quick=1` shortens runs for smoke-testing; reported numbers then carry
// more noise.
#pragma once

#include <string>

#include "common/config.h"
#include "core/scenario.h"

namespace agb::bench {

/// The calibrated critical age a_r of the paper60 configuration (hops),
/// under the bimodal-atomicity criterion the adaptive marks target.
/// Regenerate with bench/fig4_max_rate, which prints the knee ages under
/// both criteria (avg-receivers: 5.60 +- 0.10; atomicity: 7.98 +- 0.28).
inline constexpr double kCriticalAge = 8.0;

/// Builds the paper60 scenario configuration with overrides from `cfg`.
/// Recognised keys: seed, n, senders, fanout, period_ms, buffer, rate,
/// max_age, event_ids, warmup_s, duration_s, cooldown_s, quick,
/// low_mark, high_mark, tau_ms, window, alpha, gamma, delta.
core::ScenarioParams paper_params(const Config& cfg);

/// Parses argv into a Config; exits with a usage message on bad input.
Config parse_cli(int argc, char** argv);

/// Prints the standard bench banner.
void print_banner(const std::string& figure, const std::string& description,
                  const core::ScenarioParams& params);

/// Warns about unknown keys (typos) after a bench consumed its options.
void warn_unused(const Config& cfg);

}  // namespace agb::bench
