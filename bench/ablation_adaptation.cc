// Ablations of the design choices DESIGN.md calls out (not in the paper):
//
//   A. minBuff window W: 1 vs 2 vs 4 — estimate stability vs reactivity.
//   B. randomized increase gamma: 1.0 (stampede) vs 0.1 (paper) —
//      oscillation amplitude of the allowed rate.
//   C. EWMA weight alpha: 0.5 vs 0.9 — noise sensitivity of avgAge.
//   D. idle-age boost on/off — cold-start liveness below capacity.
//
// Each ablation runs the calibrated paper60 configuration at a constrained
// buffer (60 msgs, capacity ~18 msg/s, offered 30) unless noted.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "metrics/table.h"

namespace {

using namespace agb;

double rate_oscillation(const metrics::TimeSeries& ts, TimeMs from,
                        TimeMs to) {
  // Std deviation of the allowed-rate series inside [from, to).
  double sum = 0.0, sq = 0.0;
  std::size_t n = 0;
  for (const auto& [t, v] : ts.points()) {
    if (t < from || t >= to) continue;
    sum += v;
    sq += v * v;
    ++n;
  }
  if (n < 2) return 0.0;
  const double mean = sum / static_cast<double>(n);
  return std::sqrt(std::max(0.0, sq / static_cast<double>(n) - mean * mean));
}

}  // namespace

int main(int argc, char** argv) {
  auto cfg = bench::parse_cli(argc, argv);
  auto base = bench::paper_params(cfg);
  base.adaptive = true;
  base.gossip.max_events = 60;

  bench::print_banner("Ablations", "adaptation design choices", base);

  // --- A: minBuff window ---------------------------------------------------
  std::printf("A. minBuff window W (heterogeneous group, one 30-slot node)\n");
  metrics::Table wa({"W", "atomic_pct", "input_msg_s", "avg_minbuff"});
  for (std::size_t window : {1u, 2u, 4u}) {
    auto p = base;
    p.adaptation.min_buff_window = window;
    p.capacity_schedule = {{0, 1.0 / static_cast<double>(p.n), 30}};
    core::Scenario s(p);
    auto r = s.run();
    wa.add_numeric_row({static_cast<double>(window),
                        r.delivery.atomicity_pct, r.input_rate,
                        r.avg_min_buff},
                       2);
  }
  wa.print(std::cout);
  std::printf("expected: W=1 forgets the constrained node between periods "
              "(higher minBuff estimate, more loss);\nW>=2 holds the "
              "minimum steadily.\n\n");

  // --- B: randomized increase ----------------------------------------------
  std::printf("B. increase randomization gamma\n");
  metrics::Table gb({"gamma", "rate_stddev", "atomic_pct", "input_msg_s"});
  for (double gamma : {1.0, 0.5, 0.1}) {
    auto p = base;
    p.adaptation.increase_probability = gamma;
    core::Scenario s(p);
    auto r = s.run();
    const TimeMs from = p.warmup + p.duration / 3;
    const TimeMs to = p.warmup + p.duration;
    gb.add_numeric_row({gamma, rate_oscillation(r.allowed_rate_ts, from, to),
                        r.delivery.atomicity_pct, r.input_rate},
                       2);
  }
  gb.print(std::cout);
  std::printf("expected: gamma=1 lets all senders increase in lockstep -> "
              "larger rate oscillations.\n\n");

  // --- C: EWMA weight -------------------------------------------------------
  std::printf("C. moving-average weight alpha\n");
  metrics::Table ca({"alpha", "rate_stddev", "atomic_pct", "avgAge"});
  for (double alpha : {0.5, 0.9, 0.98}) {
    auto p = base;
    p.adaptation.alpha = alpha;
    core::Scenario s(p);
    auto r = s.run();
    const TimeMs from = p.warmup + p.duration / 3;
    const TimeMs to = p.warmup + p.duration;
    ca.add_numeric_row({alpha, rate_oscillation(r.allowed_rate_ts, from, to),
                        r.delivery.atomicity_pct, r.avg_age_estimate},
                       2);
  }
  ca.print(std::cout);
  std::printf("expected: low alpha makes avgAge (and hence the rate) track "
              "noise; alpha near 1 smooths it.\n\n");

  // --- D: idle-age boost -----------------------------------------------------
  std::printf("D. idle-age boost (cold start far below capacity)\n");
  metrics::Table da({"idle_boost", "input_msg_s", "offered_msg_s"});
  for (bool boost : {true, false}) {
    auto p = base;
    p.gossip.max_events = 300;  // deep under capacity: no virtual drops
    p.offered_rate = 20.0;
    p.adaptation.initial_rate = 1.0;  // must *grow* to accept the load
    p.adaptation.idle_age_boost = boost;
    // Growth is gamma*Delta_i ~ 1% per round; give it room to compound.
    p.duration = 400'000;
    core::Scenario s(p);
    auto r = s.run();
    da.add_numeric_row(
        {boost ? 1.0 : 0.0, r.input_rate, p.offered_rate}, 2);
  }
  da.print(std::cout);
  std::printf("expected: without the boost the controller never observes a "
              "virtual drop and the rate stays\nnear its initial value; "
              "with it, the offered load is accepted.\n\n");

  // --- E: robust k-minimum (paper §6) ---------------------------------------
  std::printf("E. robust k-minimum vs one pathological 6-slot node\n");
  metrics::Table ea({"robust_k", "input_msg_s", "atomic_pct", "minbuff"});
  for (std::size_t k : {1u, 2u, 3u}) {
    auto p = base;
    p.adaptation.robust_k = k;
    p.capacity_schedule = {{0, 1.0 / static_cast<double>(p.n), 6}};
    core::Scenario s(p);
    auto r = s.run();
    ea.add_numeric_row({static_cast<double>(k), r.input_rate,
                        r.delivery.atomicity_pct, r.avg_min_buff},
                       2);
  }
  ea.print(std::cout);
  std::printf("expected: k=1 throttles the whole group to the outlier's 6 "
              "slots; k>=2 ignores it and\nkeeps throughput (the outlier "
              "alone sees losses).\n");
  bench::warn_unused(cfg);
  return 0;
}
