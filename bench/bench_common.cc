#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace agb::bench {

Config parse_cli(int argc, char** argv) {
  Config cfg;
  std::string error;
  if (!cfg.parse_args(argc, argv, &error)) {
    std::fprintf(stderr, "usage: %s [key=value ...]\n%s\n", argv[0],
                 error.c_str());
    std::exit(2);
  }
  return cfg;
}

core::ScenarioParams preset_params(const std::string& name,
                                   const Config& cfg) {
  try {
    return core::ScenarioRegistry::instance().build(name, cfg);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "scenario: %s\n", e.what());
    std::exit(2);
  }
}

core::ScenarioParams paper_params(const Config& cfg) {
  return preset_params("paper60", cfg);
}

void print_banner(const std::string& figure, const std::string& description,
                  const core::ScenarioParams& params) {
  std::printf("== %s: %s ==\n", figure.c_str(), description.c_str());
  std::printf(
      "config: n=%zu senders=%zu fanout=%zu T=%lldms tau=%lldms "
      "max_age=%u seed=%llu eval=%llds\n\n",
      params.n, params.senders, params.gossip.fanout,
      static_cast<long long>(params.gossip.gossip_period),
      static_cast<long long>(params.adaptation.sample_period),
      params.gossip.max_age, static_cast<unsigned long long>(params.seed),
      static_cast<long long>(params.duration / 1000));
}

void warn_unused(const Config& cfg) {
  for (const auto& key : cfg.unused_keys()) {
    std::fprintf(stderr, "warning: unknown option '%s' ignored\n",
                 key.c_str());
  }
}

}  // namespace agb::bench
