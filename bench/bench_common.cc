#include "bench_common.h"

#include <cstdio>
#include <cstdlib>

namespace agb::bench {

Config parse_cli(int argc, char** argv) {
  Config cfg;
  std::string error;
  if (!cfg.parse_args(argc, argv, &error)) {
    std::fprintf(stderr, "usage: %s [key=value ...]\n%s\n", argv[0],
                 error.c_str());
    std::exit(2);
  }
  return cfg;
}

core::ScenarioParams paper_params(const Config& cfg) {
  core::ScenarioParams p;
  p.n = static_cast<std::size_t>(cfg.get_int("n", 60));
  p.senders = static_cast<std::size_t>(cfg.get_int("senders", 4));
  p.offered_rate = cfg.get_double("rate", 30.0);
  p.payload_size = static_cast<std::size_t>(cfg.get_int("payload", 16));
  p.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));

  p.gossip.fanout = static_cast<std::size_t>(cfg.get_int("fanout", 4));
  p.gossip.gossip_period = cfg.get_int("period_ms", 2000);
  p.gossip.max_events = static_cast<std::size_t>(cfg.get_int("buffer", 120));
  p.gossip.max_event_ids =
      static_cast<std::size_t>(cfg.get_int("event_ids", 4000));
  p.gossip.max_age =
      static_cast<std::uint32_t>(cfg.get_int("max_age", 12));

  p.adaptation.sample_period =
      cfg.get_int("tau_ms", 2 * p.gossip.gossip_period);
  p.adaptation.min_buff_window =
      static_cast<std::size_t>(cfg.get_int("window", 2));
  p.adaptation.alpha = cfg.get_double("alpha", 0.9);
  p.adaptation.critical_age = cfg.get_double("critical_age", kCriticalAge);
  p.adaptation.low_age_mark =
      cfg.get_double("low_mark", p.adaptation.critical_age - 0.5);
  p.adaptation.high_age_mark =
      cfg.get_double("high_mark", p.adaptation.critical_age + 0.5);
  p.adaptation.decrease_factor = cfg.get_double("delta_d", 0.1);
  p.adaptation.increase_factor = cfg.get_double("delta_i", 0.1);
  p.adaptation.increase_probability = cfg.get_double("gamma", 0.1);
  p.adaptation.bucket_capacity = cfg.get_double("bucket", 8.0);
  p.adaptation.initial_rate =
      cfg.get_double("initial_rate",
                     p.offered_rate / static_cast<double>(p.senders));
  p.adaptation.idle_age_boost = cfg.get_bool("idle_age_boost", true);

  const bool quick = cfg.get_bool("quick", false);
  p.warmup = cfg.get_int("warmup_s", quick ? 20 : 40) * 1000;
  p.duration = cfg.get_int("duration_s", quick ? 60 : 150) * 1000;
  p.cooldown = cfg.get_int("cooldown_s", 30) * 1000;
  return p;
}

void print_banner(const std::string& figure, const std::string& description,
                  const core::ScenarioParams& params) {
  std::printf("== %s: %s ==\n", figure.c_str(), description.c_str());
  std::printf(
      "config: n=%zu senders=%zu fanout=%zu T=%lldms tau=%lldms "
      "max_age=%u seed=%llu eval=%llds\n\n",
      params.n, params.senders, params.gossip.fanout,
      static_cast<long long>(params.gossip.gossip_period),
      static_cast<long long>(params.adaptation.sample_period),
      params.gossip.max_age, static_cast<unsigned long long>(params.seed),
      static_cast<long long>(params.duration / 1000));
}

void warn_unused(const Config& cfg) {
  for (const auto& key : cfg.unused_keys()) {
    std::fprintf(stderr, "warning: unknown option '%s' ignored\n",
                 key.c_str());
  }
}

}  // namespace agb::bench
